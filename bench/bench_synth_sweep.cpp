/**
 * @file
 * Synthetic-workload Pareto sweep: topology x workload kind x scheme.
 *
 * Extends Tables 1-2 from a support checklist to a cost axis: every
 * (machine, kind, scheme) point is simulated and plotted as
 * (dedicated buffering hardware in KB, speedup over sequential), with
 * Pareto-optimal schemes marked per workload. The driver also checks
 * every point against the paper's calibrated expectation — speedup
 * non-decreasing along the Table 2 support-upgrade path — and reports
 * each ranking inversion the synthetic workloads manufacture.
 *
 * Usage:
 *   bench_synth_sweep [--quick] [--threads N] [--faults SPEC]
 *                     [--machines a,b,c] [--csv FILE]
 *
 * Output is byte-identical at any --threads value (the sweep runner
 * indexes results by point identity, never draw order).
 */

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "apps/synth_workload.hpp"
#include "bench_common.hpp"
#include "common/table.hpp"
#include "common/trace.hpp"
#include "sim/study.hpp"

using namespace tlsim;

namespace {

struct Options {
    bool quick = false;
    bool validate = false;
    unsigned threads = 0;
    unsigned partitions = 0;
    std::vector<std::string> machines = {"numa16", "mesh64", "cmp32"};
    std::string csvPath;
    fault::FaultSpec faults;
    mem::CoreModelKind core = mem::CoreModelKind::InOrder;
};

Options
parseOptions(int argc, char **argv)
{
    Options opt;
    opt.threads = bench::parseThreads(argc, argv);
    opt.partitions = bench::parsePartitions(argc, argv);
    opt.faults = bench::parseFaults(argc, argv);
    opt.core = bench::parseCoreModel(argc, argv);
    for (int i = 1; i < argc; ++i) {
        const char *arg = argv[i];
        const char *list = nullptr;
        if (std::strcmp(arg, "--quick") == 0) {
            opt.quick = true;
        } else if (std::strcmp(arg, "--validate") == 0) {
            opt.validate = true;
        } else if (std::strncmp(arg, "--machines=", 11) == 0) {
            list = arg + 11;
        } else if (std::strcmp(arg, "--machines") == 0 && i + 1 < argc) {
            list = argv[++i];
        } else if (std::strncmp(arg, "--csv=", 6) == 0) {
            opt.csvPath = arg + 6;
        } else if (std::strcmp(arg, "--csv") == 0 && i + 1 < argc) {
            opt.csvPath = argv[++i];
        }
        if (list != nullptr) {
            opt.machines.clear();
            std::string item;
            for (const char *p = list;; ++p) {
                if (*p == ',' || *p == '\0') {
                    if (!item.empty())
                        opt.machines.push_back(item);
                    item.clear();
                    if (*p == '\0')
                        break;
                } else {
                    item += *p;
                }
            }
        }
    }
    return opt;
}

/**
 * Table 2's support-upgrade paths, as index chains into
 * SchemeConfig::evaluatedSchemes(). On the paper's calibrated loops
 * each step adds hardware and does not lose performance; a synthetic
 * point where a later chain member is slower is a ranking inversion.
 */
const std::vector<std::vector<std::size_t>> &
upgradeChains()
{
    // evaluatedSchemes() order: 0 SingleT Eager, 1 SingleT Lazy,
    // 2 MultiT&SV Eager, 3 MultiT&SV Lazy, 4 MultiT&MV Eager,
    // 5 MultiT&MV Lazy, 6 MultiT&MV FMM, 7 MultiT&MV FMM.Sw.
    static const std::vector<std::vector<std::size_t>> kChains = {
        {0, 2, 4, 5, 6}, // eager separation ladder, then lazier merging
        {1, 3, 5, 6},    // lazy ladder into FMM
    };
    return kChains;
}

/** True if outcome a Pareto-dominates b (cheaper-or-equal and
 *  faster-or-equal, at least one strict). */
bool
dominates(const sim::SynthOutcome &a, const sim::SynthOutcome &b)
{
    if (a.bufferCostKb > b.bufferCostKb || a.speedup < b.speedup)
        return false;
    return a.bufferCostKb < b.bufferCostKb || a.speedup > b.speedup;
}

struct Inversion {
    std::string machine;
    std::string spec;
    std::string cheaper; ///< earlier chain member that wins
    std::string costlier;
    double cheaperSpeedup = 0.0;
    double costlierSpeedup = 0.0;
    double costDeltaKb = 0.0;
};

/**
 * Table 2 chain edges whose costlier member is slower than the
 * cheaper one by more than @p eps, deduplicated across chains.
 */
std::vector<std::pair<std::size_t, std::size_t>>
invertedEdges(const std::vector<sim::SynthOutcome> &outcomes,
              double eps)
{
    std::vector<std::pair<std::size_t, std::size_t>> seen, inverted;
    for (const auto &chain : upgradeChains()) {
        for (std::size_t k = 0; k + 1 < chain.size(); ++k) {
            auto edge = std::make_pair(chain[k], chain[k + 1]);
            if (std::find(seen.begin(), seen.end(), edge) !=
                seen.end())
                continue;
            seen.push_back(edge);
            if (outcomes[edge.second].speedup <
                outcomes[edge.first].speedup * (1.0 - eps))
                inverted.push_back(edge);
        }
    }
    return inverted;
}

} // namespace

int
main(int argc, char **argv)
{
    Options opt = parseOptions(argc, argv);
    bench::TraceSession session(argc, argv, trace::kMaskAudit,
                                1u << 20);
    bench::CacheSession cache_session(argc, argv);

    const std::vector<tls::SchemeConfig> schemes =
        tls::SchemeConfig::evaluatedSchemes();

    // One spec per kind, calibrated defaults (synthSuite); quick mode
    // shrinks the points for CI without changing the grid shape.
    const unsigned tasks = opt.quick ? 24 : 48;
    const unsigned footprint = opt.quick ? 96 : 192;
    const std::vector<apps::SynthSpec> specs =
        apps::synthSuite(tasks, footprint, 0x5e1f);

    std::printf("Synthetic-workload Pareto sweep "
                "(speedup vs dedicated buffering cost)\n");
    std::printf("grid: %zu machines x %zu kinds x %zu schemes%s\n\n",
                opt.machines.size(), specs.size(), schemes.size(),
                opt.quick ? " [quick]" : "");

    std::ofstream csv;
    if (!opt.csvPath.empty()) {
        csv.open(opt.csvPath);
        if (!csv) {
            std::fprintf(stderr, "cannot open %s\n",
                         opt.csvPath.c_str());
            return 1;
        }
        csv << "machine,kind,spec,scheme,seq_cycles,exec_cycles,"
               "speedup,cost_kb,squashes,pareto\n";
    }

    std::vector<Inversion> inversions;
    std::vector<std::string> rankingChanges;
    // Relative slowdown a costlier chain member must show before a
    // pair counts as inverted (filters timing noise-scale effects).
    const double kEps = 0.02;

    for (const std::string &mname : opt.machines) {
        mem::MachineParams machine;
        if (!mem::MachineParams::byName(mname, &machine)) {
            std::fprintf(stderr, "unknown machine '%s'\n",
                         mname.c_str());
            return 1;
        }
        machine.coreModel = opt.core;

        std::vector<sim::SynthStudy> studies = sim::runSynthSweep(
            specs, schemes, machine, opt.threads, opt.faults,
            opt.partitions);

        TextTable table({"Kind", "Scheme", "Speedup", "Cost KB",
                         "Pareto", "Squashes"});
        for (const sim::SynthStudy &study : studies) {
            std::vector<bool> pareto(study.outcomes.size(), true);
            for (std::size_t i = 0; i < study.outcomes.size(); ++i)
                for (std::size_t j = 0; j < study.outcomes.size(); ++j)
                    if (j != i && dominates(study.outcomes[j],
                                            study.outcomes[i]))
                        pareto[i] = false;

            for (std::size_t i = 0; i < study.outcomes.size(); ++i) {
                const sim::SynthOutcome &out = study.outcomes[i];
                table.addRow({
                    i == 0 ? apps::synthKindName(study.spec.kind) : "",
                    out.scheme.name(),
                    TextTable::fmt(out.speedup, 2),
                    TextTable::fmt(out.bufferCostKb, 0),
                    pareto[i] ? "*" : "",
                    std::to_string(out.result.squashEvents),
                });
                if (csv.is_open())
                    csv << machine.name << ','
                        << apps::synthKindName(study.spec.kind) << ','
                        << '"' << study.spec.canonical() << "\","
                        << out.scheme.name() << ',' << study.seqTime
                        << ',' << out.result.execTime << ','
                        << TextTable::fmt(out.speedup, 4) << ','
                        << TextTable::fmt(out.bufferCostKb, 1) << ','
                        << out.result.squashEvents << ','
                        << (pareto[i] ? 1 : 0) << '\n';
            }
            table.addSeparator();

            // The two chains share edges; report each inverted pair
            // once per (machine, kind).
            std::vector<std::pair<std::size_t, std::size_t>> seen;
            for (const auto &chain : upgradeChains()) {
                for (std::size_t k = 0; k + 1 < chain.size(); ++k) {
                    auto edge = std::make_pair(chain[k], chain[k + 1]);
                    if (std::find(seen.begin(), seen.end(), edge) !=
                        seen.end())
                        continue;
                    seen.push_back(edge);
                    const sim::SynthOutcome &lo =
                        study.outcomes[edge.first];
                    const sim::SynthOutcome &hi =
                        study.outcomes[edge.second];
                    if (hi.speedup < lo.speedup * (1.0 - kEps)) {
                        inversions.push_back(
                            {machine.name,
                             apps::synthKindName(study.spec.kind),
                             lo.scheme.name(), hi.scheme.name(),
                             lo.speedup, hi.speedup,
                             hi.bufferCostKb - lo.bufferCostKb});
                    }
                }
            }
        }
        std::printf("== %s ==\n%s\n", machine.name.c_str(),
                    table.render().c_str());

        // --validate: rerun the grid with Predict+Validate and report
        // per-point deltas plus every Table 2 chain edge whose
        // inversion status flips under the validation axis.
        if (opt.validate) {
            std::vector<tls::SchemeConfig> vp_schemes;
            for (const tls::SchemeConfig &s : schemes)
                vp_schemes.push_back(s.withValidation(
                    tls::Validation::PredictValidate));
            std::vector<sim::SynthStudy> vp = sim::runSynthSweep(
                specs, vp_schemes, machine, opt.threads, opt.faults,
                opt.partitions);

            TextTable vt({"Kind", "Scheme", "Speedup", "+VP",
                          "Delta %", "Pred", "Mispred"});
            for (std::size_t a = 0; a < studies.size(); ++a) {
                for (std::size_t i = 0; i < schemes.size(); ++i) {
                    const sim::SynthOutcome &base =
                        studies[a].outcomes[i];
                    const sim::SynthOutcome &pvo = vp[a].outcomes[i];
                    double delta =
                        100.0 * (pvo.speedup / base.speedup - 1.0);
                    vt.addRow({
                        i == 0 ? apps::synthKindName(
                                     studies[a].spec.kind)
                               : "",
                        schemes[i].name(),
                        TextTable::fmt(base.speedup, 2),
                        TextTable::fmt(pvo.speedup, 2),
                        TextTable::fmt(delta, 1),
                        std::to_string(pvo.result.counters.get(
                            "value_predictions")),
                        std::to_string(pvo.result.counters.get(
                            "value_mispredicts")),
                    });
                }
                vt.addSeparator();

                auto noneInv =
                    invertedEdges(studies[a].outcomes, kEps);
                auto vpInv = invertedEdges(vp[a].outcomes, kEps);
                const char *kind =
                    apps::synthKindName(studies[a].spec.kind);
                for (const auto &e : noneInv) {
                    if (std::find(vpInv.begin(), vpInv.end(), e) ==
                        vpInv.end())
                        rankingChanges.push_back(
                            std::string(machine.name) + "/" + kind +
                            ": validation repairs " +
                            schemes[e.first].name() + " > " +
                            schemes[e.second].name() + " (" +
                            TextTable::fmt(
                                vp[a].outcomes[e.first].speedup, 2) +
                            "x vs " +
                            TextTable::fmt(
                                vp[a].outcomes[e.second].speedup, 2) +
                            "x under +VP)");
                }
                for (const auto &e : vpInv) {
                    if (std::find(noneInv.begin(), noneInv.end(),
                                  e) == noneInv.end())
                        rankingChanges.push_back(
                            std::string(machine.name) + "/" + kind +
                            ": validation introduces " +
                            schemes[e.first].name() + " > " +
                            schemes[e.second].name() + " (" +
                            TextTable::fmt(
                                vp[a].outcomes[e.first].speedup, 2) +
                            "x vs " +
                            TextTable::fmt(
                                vp[a].outcomes[e.second].speedup, 2) +
                            "x under +VP)");
                }
            }
            std::printf("== %s: validation axis (+VP vs None) ==\n%s\n",
                        machine.name.c_str(), vt.render().c_str());
        }
    }

    std::printf("Ranking inversions vs the paper's Table 2 upgrade "
                "path (%zu):\n",
                inversions.size());
    for (const Inversion &inv : inversions)
        std::printf("  %s/%s: %s (+%.0f KB) %.2fx < %s %.2fx\n",
                    inv.machine.c_str(), inv.spec.c_str(),
                    inv.costlier.c_str(), inv.costDeltaKb,
                    inv.costlierSpeedup, inv.cheaper.c_str(),
                    inv.cheaperSpeedup);
    if (inversions.empty())
        std::printf("  (none at this grid)\n");

    if (opt.validate) {
        std::printf("\nValidation ranking changes (Table 2 chain "
                    "edges whose inversion status flips under "
                    "Predict+Validate): %zu\n",
                    rankingChanges.size());
        for (const std::string &line : rankingChanges)
            std::printf("  %s\n", line.c_str());
        if (rankingChanges.empty())
            std::printf("  (none at this grid)\n");
    }

    return 0;
}
