/**
 * @file
 * Tables 1 and 2 plus Figure 4: the hardware-support model of the
 * taxonomy. Prints the support definitions (Table 1), the upgrade
 * path with the support each step adds (Table 2), and the mapping of
 * published schemes onto the taxonomy (Figure 4).
 */

#include <cstdio>

#include "common/table.hpp"
#include "tls/scheme.hpp"

using namespace tlsim;
using namespace tlsim::tls;

int
main()
{
    // ---- Table 1 ----
    std::printf("Table 1 — supports required by the buffering "
                "approaches\n\n");
    TextTable t1({"Support", "Description"});
    const char *names[] = {"CTID", "CRL",  "MTID",
                           "VCL",  "ULOG", "VPRED"};
    int i = 0;
    for (Support s : allSupports())
        t1.addRow({names[i++], supportDescription(s)});
    std::fputs(t1.render().c_str(), stdout);

    // ---- Table 2 ----
    std::printf("\nTable 2 — upgrade path: benefit and additional "
                "support per step\n\n");
    struct Step {
        const char *from;
        const char *to;
        const char *benefit;
        SchemeConfig a, b;
    } steps[] = {
        {"SingleT Eager AMM", "MultiT&SV Eager AMM",
         "Tolerate load imbalance w/o mostly-privatization patterns",
         SchemeConfig::make(Separation::SingleT, Merging::EagerAMM),
         SchemeConfig::make(Separation::MultiTSV, Merging::EagerAMM)},
        {"MultiT&SV Eager AMM", "MultiT&MV Eager AMM",
         "Tolerate load imbalance even with mostly-priv patterns",
         SchemeConfig::make(Separation::MultiTSV, Merging::EagerAMM),
         SchemeConfig::make(Separation::MultiTMV, Merging::EagerAMM)},
        {"MultiT&MV Eager AMM", "MultiT&MV Lazy AMM",
         "Remove commit wavefront from critical path",
         SchemeConfig::make(Separation::MultiTMV, Merging::EagerAMM),
         SchemeConfig::make(Separation::MultiTMV, Merging::LazyAMM)},
        {"MultiT&MV Lazy AMM", "MultiT&MV FMM",
         "Faster version commit but slower version recovery",
         SchemeConfig::make(Separation::MultiTMV, Merging::LazyAMM),
         SchemeConfig::make(Separation::MultiTMV, Merging::FMM)},
    };

    TextTable t2({"Upgrade", "Performance benefit", "Adds",
                  "Total supports"});
    for (const Step &s : steps) {
        SupportSet before = s.a.requiredSupports();
        SupportSet after = s.b.requiredSupports();
        SupportSet added(std::uint8_t(after.bits() & ~before.bits()));
        std::string upgrade = std::string(s.from) + " -> " + s.to;
        t2.addRow({upgrade, s.benefit, added.toString(),
                   after.toString()});
    }
    std::fputs(t2.render().c_str(), stdout);

    // ---- Figure 4 ----
    std::printf("\nFigure 4 — published schemes mapped onto the "
                "taxonomy\n\n");
    TextTable f4({"Scheme", "Separation", "Merging", "Notes"});
    for (const PublishedScheme &p : publishedSchemes()) {
        std::string notes;
        if (p.coarseRecovery)
            notes = "coarse recovery";
        else if (p.mergingNotApplicable)
            notes = "eager/lazy distinction does not apply";
        f4.addRow({p.name, separationName(p.separation),
                   p.coarseRecovery ? "FMM (software copying)"
                                    : mergingName(p.merging),
                   notes});
    }
    std::fputs(f4.render().c_str(), stdout);

    // ---- Section 3.3.5's complexity ranking ----
    std::printf("\nComplexity ranking (Section 3.3.5): supports per "
                "evaluated scheme\n\n");
    TextTable rank({"Scheme", "Supports", "Count"});
    for (const SchemeConfig &s : SchemeConfig::evaluatedSchemes()) {
        rank.addRow({s.name(), s.requiredSupports().toString(),
                     std::to_string(s.requiredSupports().count())});
    }
    std::fputs(rank.render().c_str(), stdout);
    return 0;
}
