/**
 * @file
 * Figure 11: the Figure 9 study repeated on the 8-processor CMP.
 *
 * Expected shape (paper Section 5.3): same trends as the NUMA, but
 * the differences between buffering schemes shrink — lower memory
 * latencies mean less memory stall, so laziness gains only ~9% on the
 * simpler schemes and ~3% on MultiT&MV, while multiple tasks&versions
 * still gains ~23%.
 */

#include <cstdio>

#include "bench_common.hpp"
#include "sim/study.hpp"

using namespace tlsim;

int
main(int argc, char **argv)
{
    unsigned threads = bench::parseThreads(argc, argv);
    unsigned partitions = bench::parsePartitions(argc, argv);
    fault::FaultSpec faults = bench::parseFaults(argc, argv);
    // Full sweeps emit millions of records; default to the audit
    // categories (no NoC firehose) and size the rings accordingly.
    bench::TraceSession trace_session(argc, argv, trace::kMaskAudit,
                                      std::size_t(1) << 24);
    bench::CacheSession cache_session(argc, argv);
    mem::MachineParams machine = mem::MachineParams::cmp8();
    machine.coreModel = bench::parseCoreModel(argc, argv);
    std::vector<tls::SchemeConfig> schemes = {
        {tls::Separation::SingleT, tls::Merging::EagerAMM, false},
        {tls::Separation::SingleT, tls::Merging::LazyAMM, false},
        {tls::Separation::MultiTSV, tls::Merging::EagerAMM, false},
        {tls::Separation::MultiTSV, tls::Merging::LazyAMM, false},
        {tls::Separation::MultiTMV, tls::Merging::EagerAMM, false},
        {tls::Separation::MultiTMV, tls::Merging::LazyAMM, false},
    };

    std::vector<sim::AppStudy> studies =
        sim::runStudySweep(apps::appSuite(), schemes, machine, 3, threads,
                           faults, partitions);

    std::fputs(sim::renderFigure(
                   "Figure 11 — task-state separation x eager/lazy AMM "
                   "(CMP, 8 processors)",
                   studies)
                   .c_str(),
               stdout);

    sim::FigureAverages avg = sim::figureAverages(studies);
    std::printf("\nHeadline comparisons (paper: Section 5.3):\n");
    std::printf("  MultiT&MV Eager vs SingleT Eager : %4.0f%% faster "
                "(paper ~23%%)\n",
                100.0 * (1.0 - avg.normTime[4]));
    std::printf("  Laziness on SingleT/MultiT&SV    : %4.0f%% / %.0f%% "
                "faster (paper ~9%%)\n",
                100.0 * (1.0 - avg.normTime[1] / avg.normTime[0]),
                100.0 * (1.0 - avg.normTime[3] / avg.normTime[2]));
    std::printf("  Laziness on MultiT&MV            : %4.0f%% faster "
                "(paper ~3%%)\n",
                100.0 * (1.0 - avg.normTime[5] / avg.normTime[4]));
    return 0;
}
