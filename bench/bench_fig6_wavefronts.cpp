/**
 * @file
 * Figure 6: progress of the execution and commit wavefronts under
 * MultiT&MV Eager (a), MultiT&MV Lazy (b), SingleT Eager (c) and
 * SingleT Lazy (d). Eager merging puts the commit wavefront in the
 * critical path; laziness collapses it to token passes (plus a final
 * merge, the diamonds of (b)).
 */

#include <algorithm>
#include <cstdio>
#include <string>

#include "bench_common.hpp"
#include "scripted_figure_workloads.hpp"

using namespace tlsim;

namespace {

void
draw(const tls::RunResult &res, Cycle scale)
{
    for (const tls::TaskTimeline &tl : res.timelines) {
        std::string lane(74, ' ');
        auto mark = [&](Cycle from, Cycle to, char c) {
            std::size_t a = std::min<std::size_t>(from / scale, 73);
            std::size_t b = std::min<std::size_t>(to / scale, 73);
            for (std::size_t i = a; i <= b; ++i)
                lane[i] = c;
        };
        mark(tl.execStart, tl.execEnd, '=');
        mark(tl.commitStart, tl.commitEnd, 'C');
        std::printf("  T%llu p%u |%s|\n", (unsigned long long)tl.id,
                    tl.proc, lane.c_str());
    }
}

Cycle
commitWavefrontSpan(const tls::RunResult &res)
{
    // How long after the last execution the commit wavefront drags on.
    Cycle last_exec = 0, last_commit = 0;
    for (const tls::TaskTimeline &tl : res.timelines) {
        last_exec = std::max(last_exec, tl.execEnd);
        last_commit = std::max(last_commit, tl.commitEnd);
    }
    return last_commit - last_exec;
}

} // namespace

int
main(int argc, char **argv)
{
    // Scripted wavefront runs: small enough to trace every category.
    fault::FaultSpec faults = bench::parseFaults(argc, argv);
    mem::CoreModelKind core = bench::parseCoreModel(argc, argv);
    bench::TraceSession trace_session(argc, argv, trace::kMaskAll,
                                      std::size_t(1) << 20);
    struct Config {
        const char *label;
        tls::Separation sep;
        tls::Merging merge;
    } configs[] = {
        {"(a) MultiT&MV Eager AMM", tls::Separation::MultiTMV,
         tls::Merging::EagerAMM},
        {"(b) MultiT&MV Lazy AMM", tls::Separation::MultiTMV,
         tls::Merging::LazyAMM},
        {"(c) SingleT Eager AMM", tls::Separation::SingleT,
         tls::Merging::EagerAMM},
        {"(d) SingleT Lazy AMM", tls::Separation::SingleT,
         tls::Merging::LazyAMM},
    };

    std::printf("Figure 6 — execution (=) and commit (C) wavefronts, "
                "6 tasks on 3 processors\n");

    tls::RunResult results[4];
    Cycle longest = 0;
    for (int i = 0; i < 4; ++i) {
        results[i] = bench::runFigure6(configs[i].sep, configs[i].merge,
                                       3, 6, faults, core);
        longest = std::max(longest, results[i].execTime);
    }
    Cycle scale = std::max<Cycle>(1, longest / 72);

    for (int i = 0; i < 4; ++i) {
        std::printf("\n%s  (total %llu, commit tail %llu cycles)\n",
                    configs[i].label,
                    (unsigned long long)results[i].execTime,
                    (unsigned long long)commitWavefrontSpan(results[i]));
        draw(results[i], scale);
    }

    std::printf("\nShape checks:\n");
    bool eager_tail =
        commitWavefrontSpan(results[0]) > commitWavefrontSpan(results[1]);
    std::printf("  Eager's end-of-loop commit wavefront exceeds "
                "Lazy's: %s\n",
                eager_tail ? "OK" : "MISMATCH");
    std::printf("  Lazy beats Eager under MultiT&MV: %s\n",
                results[1].execTime < results[0].execTime ? "OK"
                                                          : "MISMATCH");
    std::printf("  Lazy beats Eager under SingleT:   %s\n",
                results[3].execTime < results[2].execTime ? "OK"
                                                          : "MISMATCH");
    std::printf("  MultiT&MV beats SingleT (Eager):  %s\n",
                results[0].execTime <= results[2].execTime
                    ? "OK"
                    : "MISMATCH");
    return 0;
}
