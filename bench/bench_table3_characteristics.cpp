/**
 * @file
 * Table 3: application characteristics. Instructions per task and the
 * measured Commit/Execution ratio (computed, as in the paper, under
 * MultiT&MV Eager where tasks do not stall) for both machines, plus
 * the qualitative classification columns.
 */

#include <cstdio>

#include "bench_common.hpp"
#include "common/table.hpp"
#include "sim/study.hpp"

using namespace tlsim;

int
main(int argc, char **argv)
{
    unsigned threads = bench::parseThreads(argc, argv);
    fault::FaultSpec faults = bench::parseFaults(argc, argv);
    bench::CacheSession cache_session(argc, argv);
    tls::SchemeConfig mv_eager{tls::Separation::MultiTMV,
                               tls::Merging::EagerAMM, false};
    mem::MachineParams numa = mem::MachineParams::numa16();
    mem::MachineParams cmp = mem::MachineParams::cmp8();
    numa.coreModel = cmp.coreModel = bench::parseCoreModel(argc, argv);

    TextTable table({"Appl", "#Tasks", "KInstr/task (paper)",
                     "C/E% NUMA (paper)", "C/E% CMP (paper)",
                     "Squash/task", "Load Imbal", "Priv Pattern",
                     "C/E class"});

    // Both machine points of every app fan out together; the table is
    // rendered in suite order afterwards.
    std::vector<apps::AppParams> suite = apps::appSuite();
    std::vector<tls::RunResult> numa_runs(suite.size());
    std::vector<tls::RunResult> cmp_runs(suite.size());
    parallelFor(
        suite.size() * 2,
        [&](std::size_t i) {
            const apps::AppParams &app = suite[i / 2];
            if (i % 2 == 0)
                numa_runs[i / 2] =
                    sim::runScheme(app, mv_eager, numa, faults);
            else
                cmp_runs[i / 2] =
                    sim::runScheme(app, mv_eager, cmp, faults);
        },
        threads);

    for (std::size_t a = 0; a < suite.size(); ++a) {
        const apps::AppParams &app = suite[a];
        const tls::RunResult &numa_run = numa_runs[a];
        const tls::RunResult &cmp_run = cmp_runs[a];

        double measured_instr = 0;
        // Mean instructions follow directly from the generator.
        double sum = 0;
        apps::LoopWorkload wl(app);
        for (TaskId t = 1; t <= app.numTasks; ++t)
            sum += wl.sizeFactor(t);
        measured_instr = app.instrPerTask * sum / app.numTasks / 1000.0;

        char instr[64], ce_numa[64], ce_cmp[64], squash[32];
        std::snprintf(instr, sizeof(instr), "%.1f (%.1f)",
                      measured_instr, app.paperInstrPerTaskK);
        std::snprintf(ce_numa, sizeof(ce_numa), "%.1f (%.1f)",
                      100.0 * numa_run.commitExecRatio,
                      app.paperCommitExecNuma);
        std::snprintf(ce_cmp, sizeof(ce_cmp), "%.1f (%.1f)",
                      100.0 * cmp_run.commitExecRatio,
                      app.paperCommitExecCmp);
        std::snprintf(squash, sizeof(squash), "%.3f",
                      double(numa_run.squashEvents) /
                          double(numa_run.committedTasks));

        table.addRow({app.name, std::to_string(app.numTasks), instr,
                      ce_numa, ce_cmp, squash,
                      apps::levelName(app.loadImbalance),
                      apps::levelName(app.privPattern),
                      apps::levelName(app.commitExecClass)});
    }

    std::printf("Table 3 — application characteristics "
                "(measured, paper value in parentheses)\n\n%s\n",
                table.render().c_str());
    std::printf("Notes: task sizes are calibrated to reproduce the "
                "paper's C/E ratio classes and written footprints\n"
                "(Figure 1) on this simulator; see DESIGN.md section 3 "
                "for the scaling rationale.\n");
    return 0;
}
