/**
 * @file
 * Fault-injection soak runner: randomized (but fully deterministic)
 * fault schedules across every evaluated scheme, checking the three
 * robustness oracles on every point:
 *
 *   (a) completion — every task commits despite injected squashes,
 *       NoC stalls and forced buffer spills;
 *   (b) state — the final committed memory image (RunResult
 *       memStateHash/memStateLines) is byte-identical to the
 *       fault-free run of the same workload seed: faults may only
 *       move events in time, never change what commits;
 *   (c) audit — the recorded task-lifetime trace replays cleanly
 *       through the docs/TRACING.md invariants (same checker as
 *       `bench_inspect --audit`).
 *
 * Every schedule is drawn from a seeded generator, so a failing round
 * reproduces exactly from its printed spec: re-run with
 * `--faults=<spec>` on any figure driver or re-run the soak with the
 * same `--seed`.
 *
 * Flags: --short (CI-sized rounds), --rounds=N, --seed=N, --threads=N,
 * --trace=FILE (write the recorded soak trace for offline
 * `bench_inspect --audit`).
 */

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "common/rng.hpp"
#include "common/table.hpp"
#include "sim/study.hpp"

using namespace tlsim;

namespace {

/** Squash-prone app: cross-task dependences plus spurious squashes. */
apps::AppParams
soakSquashy(unsigned tasks)
{
    apps::AppParams app;
    app.name = "soak-squashy";
    app.numTasks = tasks;
    app.instrPerTask = 900;
    app.sizeSigma = 0.4;
    app.writtenKb = 0.8;
    app.sharedReadKb = 0.2;
    app.depProb = 0.05;
    app.depDistance = 3;
    return app;
}

/** Buffer-hungry app: a large written footprint pressures the L2 and
 *  the (fault-capped) overflow area. */
apps::AppParams
soakHungry(unsigned tasks)
{
    apps::AppParams app;
    app.name = "soak-hungry";
    app.numTasks = tasks;
    app.instrPerTask = 1'400;
    app.sizeSigma = 0.2;
    app.writtenKb = 6.0;
    app.sharedReadKb = 0.3;
    app.depProb = 0.01;
    app.depDistance = 2;
    return app;
}

/**
 * Draw one randomized fault schedule. Every site gets a nonzero rate —
 * the soak's job is to exercise all of them at once — with magnitudes
 * kept in ranges where runs still finish quickly.
 */
fault::FaultSpec
drawSchedule(Rng &rng)
{
    fault::FaultSpec spec;
    spec.seed = rng.next();
    spec.nocDelayProb = 0.02 + 0.08 * rng.uniform();
    spec.nocDelayCycles = Cycle(rng.range(10, 30));
    spec.nocStallProb = 0.005 + 0.015 * rng.uniform();
    spec.nocStallCycles = Cycle(rng.range(40, 120));
    spec.nocRetryMax = unsigned(rng.range(3, 5));
    spec.spillProb = 0.01 + 0.04 * rng.uniform();
    spec.overflowCap = std::size_t(rng.range(8, 40));
    spec.overflowPressureCycles = Cycle(rng.range(30, 90));
    spec.undoStressProb = 0.2 + 0.4 * rng.uniform();
    spec.undoStressCycles = Cycle(rng.range(20, 80));
    spec.squashProb = 0.002 + 0.006 * rng.uniform();
    // Budgeted: spurious squashes fire per store and re-executed
    // stores draw again, so an uncapped rate explodes under FMM's
    // serialized recovery (each squash wipes every younger task).
    spec.squashMax = rng.range(24, 64);
    spec.commitSquashProb = 0.002 + 0.008 * rng.uniform();
    spec.commitSquashMax = rng.range(12, 32);
    return spec;
}

struct SoakTally {
    unsigned points = 0;
    unsigned completionFailures = 0;
    unsigned stateMismatches = 0;
    fault::FaultCounters injected;

    void
    fold(const fault::FaultCounters &c)
    {
        injected.nocDelays += c.nocDelays;
        injected.nocStalls += c.nocStalls;
        injected.nocRetries += c.nocRetries;
        injected.forcedSpills += c.forcedSpills;
        injected.overflowPressure += c.overflowPressure;
        injected.undoStressEvents += c.undoStressEvents;
        injected.undoStressCycles += c.undoStressCycles;
        injected.spuriousSquashes += c.spuriousSquashes;
        injected.commitSquashes += c.commitSquashes;
    }
};

bool
parseFlag(int argc, char **argv, const char *name)
{
    for (int i = 1; i < argc; ++i)
        if (std::strcmp(argv[i], name) == 0)
            return true;
    return false;
}

std::uint64_t
parseU64Flag(int argc, char **argv, const char *prefix,
             std::uint64_t fallback)
{
    std::size_t len = std::strlen(prefix);
    for (int i = 1; i < argc; ++i)
        if (std::strncmp(argv[i], prefix, len) == 0)
            return std::strtoull(argv[i] + len, nullptr, 10);
    return fallback;
}

std::string
parseTracePath(int argc, char **argv)
{
    for (int i = 1; i < argc; ++i) {
        if (std::strncmp(argv[i], "--trace=", 8) == 0)
            return argv[i] + 8;
        if (std::strcmp(argv[i], "--trace") == 0 && i + 1 < argc)
            return argv[i + 1];
    }
    return {};
}

} // namespace

int
main(int argc, char **argv)
{
    const bool short_mode = parseFlag(argc, argv, "--short");
    const unsigned threads = bench::parseThreads(argc, argv);
    const std::uint64_t seed =
        parseU64Flag(argc, argv, "--seed=", 0x50a4'50a4ULL);
    const unsigned rounds = unsigned(parseU64Flag(
        argc, argv, "--rounds=", short_mode ? 2 : 4));
    const std::string trace_path = parseTracePath(argc, argv);
    const unsigned tasks = short_mode ? 48 : 96;
    // A --faults=SPEC override replays that exact schedule in every
    // round instead of drawing randomized ones (failure reproduction).
    const fault::FaultSpec fixed_spec = bench::parseFaults(argc, argv);
    bench::CacheSession cache_session(argc, argv);

    std::vector<apps::AppParams> apps = {soakSquashy(tasks),
                                         soakHungry(tasks)};
    std::vector<tls::SchemeConfig> schemes =
        tls::SchemeConfig::evaluatedSchemes();
    // --scheme=N narrows to one evaluated scheme (failure isolation).
    std::uint64_t scheme_pick =
        parseU64Flag(argc, argv, "--scheme=", ~0ULL);
    if (scheme_pick < schemes.size())
        schemes = {schemes[scheme_pick]};

    // One in-memory trace session spans the whole soak; each sweep's
    // points get distinct streams (app, machine, sweep ordinal), so a
    // single end-of-run audit covers every round, faulted and clean.
    const bool tracing = trace::builtIn();
    const std::size_t ring_capacity =
        std::size_t(1) << (short_mode ? 21 : 23);
    if (tracing) {
        trace::Options opts;
        opts.mask = trace::kMaskAudit;
        opts.ringCapacity = ring_capacity;
        trace::start(opts);
    } else {
        std::fprintf(stderr, "soak: built with TLSIM_TRACE=OFF — "
                             "running without the trace audit oracle\n");
    }

    std::printf("Fault-injection soak: %u rounds x %zu apps x %zu "
                "schemes (seed 0x%llx%s)\n\n",
                rounds, apps.size(), schemes.size(),
                (unsigned long long)seed, short_mode ? ", short" : "");

    Rng master(seed);
    SoakTally tally;
    TextTable table({"Round", "Machine", "Schedule", "Points",
                     "Injected faults", "State"});

    for (unsigned round = 0; round < rounds; ++round) {
        fault::FaultSpec spec =
            fixed_spec.anyEnabled() ? fixed_spec : drawSchedule(master);
        // Alternate machines so both NoC fault paths (mesh links,
        // crossbar ports) see stalls and delays.
        mem::MachineParams machine = (round % 2 == 0)
                                         ? mem::MachineParams::numa16()
                                         : mem::MachineParams::cmp8();

        // Fresh workload draw per round: the fault seed is derived
        // from the app seed (deriveFaultSeed), so the faulted and
        // fault-free sweeps pair point-by-point.
        std::vector<apps::AppParams> round_apps = apps;
        std::uint64_t mix = seed + 0x9e3779b97f4a7c15ULL * (round + 1);
        for (std::size_t a = 0; a < round_apps.size(); ++a) {
            std::uint64_t s = mix + a;
            round_apps[a].seed = splitmix64(s);
        }

        std::vector<sim::AppStudy> faulted = sim::runStudySweep(
            round_apps, schemes, machine, 1, threads, spec);
        std::vector<sim::AppStudy> clean = sim::runStudySweep(
            round_apps, schemes, machine, 1, threads, {});

        unsigned round_points = 0;
        fault::FaultCounters round_injected;
        bool round_state_ok = true;
        for (std::size_t a = 0; a < round_apps.size(); ++a) {
            for (std::size_t s = 0; s < schemes.size(); ++s) {
                const tls::RunResult &f = faulted[a].outcomes[s].result;
                const tls::RunResult &c = clean[a].outcomes[s].result;
                ++tally.points;
                ++round_points;
                if (f.committedTasks != round_apps[a].numTasks ||
                    c.committedTasks != round_apps[a].numTasks) {
                    ++tally.completionFailures;
                    std::fprintf(stderr,
                                 "soak: round %u %s/%s committed "
                                 "%llu/%u tasks\n",
                                 round, round_apps[a].name.c_str(),
                                 schemes[s].name().c_str(),
                                 (unsigned long long)f.committedTasks,
                                 round_apps[a].numTasks);
                }
                if (f.memStateHash != c.memStateHash ||
                    f.memStateLines != c.memStateLines) {
                    ++tally.stateMismatches;
                    round_state_ok = false;
                    std::fprintf(
                        stderr,
                        "soak: round %u %s/%s memory-state divergence "
                        "(faulted %016llx/%llu lines vs clean "
                        "%016llx/%llu)\n  schedule: %s\n",
                        round, round_apps[a].name.c_str(),
                        schemes[s].name().c_str(),
                        (unsigned long long)f.memStateHash,
                        (unsigned long long)f.memStateLines,
                        (unsigned long long)c.memStateHash,
                        (unsigned long long)c.memStateLines,
                        spec.canonical().c_str());
                }
                tally.fold(f.faults);
                round_injected.nocDelays += f.faults.nocDelays;
                round_injected.nocStalls += f.faults.nocStalls;
                round_injected.forcedSpills += f.faults.forcedSpills;
                round_injected.overflowPressure +=
                    f.faults.overflowPressure;
                round_injected.undoStressEvents +=
                    f.faults.undoStressEvents;
                round_injected.spuriousSquashes +=
                    f.faults.spuriousSquashes;
                round_injected.commitSquashes += f.faults.commitSquashes;
            }
        }

        char injected[96];
        std::snprintf(injected, sizeof(injected),
                      "noc %llu+%llu spill %llu ovf %llu undo %llu "
                      "sq %llu+%llu",
                      (unsigned long long)round_injected.nocDelays,
                      (unsigned long long)round_injected.nocStalls,
                      (unsigned long long)round_injected.forcedSpills,
                      (unsigned long long)round_injected.overflowPressure,
                      (unsigned long long)round_injected.undoStressEvents,
                      (unsigned long long)round_injected.spuriousSquashes,
                      (unsigned long long)round_injected.commitSquashes);
        table.addRow({std::to_string(round),
                      (round % 2 == 0) ? "NUMA-16" : "CMP-8",
                      spec.canonical(), std::to_string(round_points),
                      injected, round_state_ok ? "match" : "DIVERGED"});
    }

    // Synthetic-workload phase: one generated stream per kind on each
    // machine class, faulted vs clean, against the same three oracles.
    // Streams are a pure function of (spec, seed), so this also soaks
    // the generator itself: a nondeterministic stream shows up as a
    // faulted-vs-clean memStateHash divergence.
    {
        const unsigned synth_tasks = short_mode ? 24 : 48;
        const unsigned synth_fp = short_mode ? 96 : 192;
        std::uint64_t synth_seed = seed;
        const std::vector<apps::SynthSpec> specs = apps::synthSuite(
            synth_tasks, synth_fp, splitmix64(synth_seed));
        const fault::FaultSpec spec = fixed_spec.anyEnabled()
                                          ? fixed_spec
                                          : drawSchedule(master);
        const std::vector<mem::MachineParams> synth_machines = {
            mem::MachineParams::mesh(64), mem::MachineParams::cmp32()};
        for (const mem::MachineParams &machine : synth_machines) {
            std::vector<sim::SynthStudy> faulted = sim::runSynthSweep(
                specs, schemes, machine, threads, spec);
            std::vector<sim::SynthStudy> clean = sim::runSynthSweep(
                specs, schemes, machine, threads, {});

            unsigned phase_points = 0;
            fault::FaultCounters phase_injected;
            bool phase_state_ok = true;
            for (std::size_t a = 0; a < specs.size(); ++a) {
                for (std::size_t s = 0; s < schemes.size(); ++s) {
                    const tls::RunResult &f =
                        faulted[a].outcomes[s].result;
                    const tls::RunResult &c =
                        clean[a].outcomes[s].result;
                    ++tally.points;
                    ++phase_points;
                    if (f.committedTasks != specs[a].tasks ||
                        c.committedTasks != specs[a].tasks) {
                        ++tally.completionFailures;
                        std::fprintf(
                            stderr,
                            "soak: synth %s/%s/%s committed %llu/%u "
                            "tasks\n",
                            machine.name.c_str(),
                            specs[a].name().c_str(),
                            schemes[s].name().c_str(),
                            (unsigned long long)f.committedTasks,
                            specs[a].tasks);
                    }
                    if (f.memStateHash != c.memStateHash ||
                        f.memStateLines != c.memStateLines) {
                        ++tally.stateMismatches;
                        phase_state_ok = false;
                        std::fprintf(
                            stderr,
                            "soak: synth %s/%s/%s memory-state "
                            "divergence\n  spec: %s\n  schedule: %s\n",
                            machine.name.c_str(),
                            specs[a].name().c_str(),
                            schemes[s].name().c_str(),
                            specs[a].canonical().c_str(),
                            spec.canonical().c_str());
                    }
                    tally.fold(f.faults);
                    phase_injected.spuriousSquashes +=
                        f.faults.spuriousSquashes;
                    phase_injected.commitSquashes +=
                        f.faults.commitSquashes;
                }
            }
            char injected[96];
            std::snprintf(
                injected, sizeof(injected), "sq %llu+%llu",
                (unsigned long long)phase_injected.spuriousSquashes,
                (unsigned long long)phase_injected.commitSquashes);
            table.addRow({"synth", machine.name, spec.canonical(),
                          std::to_string(phase_points), injected,
                          phase_state_ok ? "match" : "DIVERGED"});
        }
    }

    // The core-pipeline records roughly triple the OoO phase's
    // memory-op record volume, so it gets its own trace session: a
    // shared ring sized for the audit mask would wrap, and the audit
    // flags wrap-around truncation as an issue. The in-order phases'
    // trace is drained here and audited at the end alongside the OoO
    // one.
    trace::TraceFile inorder_file;
    if (tracing) {
        trace::stop();
        inorder_file = trace::drainFile();
        trace::reset();
        trace::Options opts;
        // The value category rides along so the predict+validate
        // phase below is covered by audit invariant 8 (every
        // predicted read validated or squashed).
        opts.mask = trace::kMaskAudit | trace::kMaskCore |
                    trace::kMaskValue;
        // ~2 core records per memory op on top of the audit kinds:
        // the phase needs roughly twice the ring of an audit-only
        // round set.
        opts.ringCapacity = std::size_t(1) << (short_mode ? 22 : 23);
        trace::start(opts);
    }

    // Out-of-order core phase: the squashy/hungry apps again, now
    // under the bounded-window OoO model (docs/OOO_CORE.md), faulted
    // vs clean, against the same three oracles. Additionally the
    // clean OoO memory image must equal the clean in-order image —
    // the core timing model may reorder events in time but must
    // never change what commits.
    {
        mem::MachineParams machine = mem::MachineParams::numa16();
        machine.coreModel = mem::CoreModelKind::OutOfOrder;
        mem::MachineParams inorder_machine = mem::MachineParams::numa16();
        const fault::FaultSpec spec = fixed_spec.anyEnabled()
                                          ? fixed_spec
                                          : drawSchedule(master);
        std::vector<apps::AppParams> ooo_apps = apps;
        std::uint64_t mix = seed + 0xc2b2ae3d27d4eb4fULL;
        for (std::size_t a = 0; a < ooo_apps.size(); ++a) {
            std::uint64_t s = mix + a;
            ooo_apps[a].seed = splitmix64(s);
        }

        std::vector<sim::AppStudy> faulted = sim::runStudySweep(
            ooo_apps, schemes, machine, 1, threads, spec);
        std::vector<sim::AppStudy> clean = sim::runStudySweep(
            ooo_apps, schemes, machine, 1, threads, {});
        std::vector<sim::AppStudy> inorder = sim::runStudySweep(
            ooo_apps, schemes, inorder_machine, 1, threads, {});

        unsigned phase_points = 0;
        fault::FaultCounters phase_injected;
        bool phase_state_ok = true;
        for (std::size_t a = 0; a < ooo_apps.size(); ++a) {
            for (std::size_t s = 0; s < schemes.size(); ++s) {
                const tls::RunResult &f = faulted[a].outcomes[s].result;
                const tls::RunResult &c = clean[a].outcomes[s].result;
                const tls::RunResult &io = inorder[a].outcomes[s].result;
                ++tally.points;
                ++phase_points;
                if (f.committedTasks != ooo_apps[a].numTasks ||
                    c.committedTasks != ooo_apps[a].numTasks) {
                    ++tally.completionFailures;
                    std::fprintf(stderr,
                                 "soak: ooo %s/%s committed %llu/%u "
                                 "tasks\n",
                                 ooo_apps[a].name.c_str(),
                                 schemes[s].name().c_str(),
                                 (unsigned long long)f.committedTasks,
                                 ooo_apps[a].numTasks);
                }
                if (f.memStateHash != c.memStateHash ||
                    f.memStateLines != c.memStateLines) {
                    ++tally.stateMismatches;
                    phase_state_ok = false;
                    std::fprintf(
                        stderr,
                        "soak: ooo %s/%s faulted-vs-clean memory-state "
                        "divergence\n  schedule: %s\n",
                        ooo_apps[a].name.c_str(),
                        schemes[s].name().c_str(),
                        spec.canonical().c_str());
                }
                if (c.memStateHash != io.memStateHash ||
                    c.memStateLines != io.memStateLines) {
                    ++tally.stateMismatches;
                    phase_state_ok = false;
                    std::fprintf(
                        stderr,
                        "soak: ooo %s/%s ooo-vs-inorder memory-state "
                        "divergence (%016llx/%llu vs %016llx/%llu)\n",
                        ooo_apps[a].name.c_str(),
                        schemes[s].name().c_str(),
                        (unsigned long long)c.memStateHash,
                        (unsigned long long)c.memStateLines,
                        (unsigned long long)io.memStateHash,
                        (unsigned long long)io.memStateLines);
                }
                tally.fold(f.faults);
                phase_injected.spuriousSquashes +=
                    f.faults.spuriousSquashes;
                phase_injected.commitSquashes +=
                    f.faults.commitSquashes;
            }
        }
        char injected[96];
        std::snprintf(injected, sizeof(injected), "sq %llu+%llu",
                      (unsigned long long)phase_injected.spuriousSquashes,
                      (unsigned long long)phase_injected.commitSquashes);
        table.addRow({"ooo", "NUMA-16", spec.canonical(),
                      std::to_string(phase_points), injected,
                      phase_state_ok ? "match" : "DIVERGED"});
    }

    // Predict+Validate phase: the synthetic suite (whose SquashStorm
    // and Reduce kinds manufacture the invalidation churn the
    // predictor feeds on) under every evaluated scheme with the
    // validation axis enabled. On top of the usual faulted-vs-clean
    // pair, the clean Predict+Validate image must equal the clean
    // validation=None image: prediction is a timing policy and may
    // never change what commits (DESIGN.md §11).
    std::uint64_t vp_predictions = 0;
    {
        mem::MachineParams machine = mem::MachineParams::numa16();
        const fault::FaultSpec spec = fixed_spec.anyEnabled()
                                          ? fixed_spec
                                          : drawSchedule(master);
        std::vector<tls::SchemeConfig> vp_schemes;
        for (const tls::SchemeConfig &s : schemes)
            vp_schemes.push_back(
                s.withValidation(tls::Validation::PredictValidate));
        const unsigned vp_tasks = short_mode ? 24 : 48;
        const unsigned vp_fp = short_mode ? 96 : 192;
        std::uint64_t vp_seed = seed + 0xa0761d6478bd642fULL;
        const std::vector<apps::SynthSpec> vp_specs = apps::synthSuite(
            vp_tasks, vp_fp, splitmix64(vp_seed));

        std::vector<sim::SynthStudy> faulted = sim::runSynthSweep(
            vp_specs, vp_schemes, machine, threads, spec);
        std::vector<sim::SynthStudy> clean = sim::runSynthSweep(
            vp_specs, vp_schemes, machine, threads, {});
        std::vector<sim::SynthStudy> baseline = sim::runSynthSweep(
            vp_specs, schemes, machine, threads, {});

        unsigned phase_points = 0;
        fault::FaultCounters phase_injected;
        bool phase_state_ok = true;
        for (std::size_t a = 0; a < vp_specs.size(); ++a) {
            for (std::size_t s = 0; s < schemes.size(); ++s) {
                const tls::RunResult &f = faulted[a].outcomes[s].result;
                const tls::RunResult &c = clean[a].outcomes[s].result;
                const tls::RunResult &b = baseline[a].outcomes[s].result;
                ++tally.points;
                ++phase_points;
                vp_predictions +=
                    f.counters.get("value_predictions") +
                    c.counters.get("value_predictions");
                if (f.committedTasks != vp_specs[a].tasks ||
                    c.committedTasks != vp_specs[a].tasks) {
                    ++tally.completionFailures;
                    std::fprintf(stderr,
                                 "soak: vp %s/%s committed %llu/%u "
                                 "tasks\n",
                                 vp_specs[a].name().c_str(),
                                 vp_schemes[s].name().c_str(),
                                 (unsigned long long)f.committedTasks,
                                 vp_specs[a].tasks);
                }
                if (f.memStateHash != c.memStateHash ||
                    f.memStateLines != c.memStateLines) {
                    ++tally.stateMismatches;
                    phase_state_ok = false;
                    std::fprintf(
                        stderr,
                        "soak: vp %s/%s faulted-vs-clean memory-state "
                        "divergence\n  spec: %s\n  schedule: %s\n",
                        vp_specs[a].name().c_str(),
                        vp_schemes[s].name().c_str(),
                        vp_specs[a].canonical().c_str(),
                        spec.canonical().c_str());
                }
                if (c.memStateHash != b.memStateHash ||
                    c.memStateLines != b.memStateLines) {
                    ++tally.stateMismatches;
                    phase_state_ok = false;
                    std::fprintf(
                        stderr,
                        "soak: vp %s/%s predicted-vs-baseline "
                        "memory-state divergence (%016llx/%llu vs "
                        "%016llx/%llu)\n",
                        vp_specs[a].name().c_str(),
                        vp_schemes[s].name().c_str(),
                        (unsigned long long)c.memStateHash,
                        (unsigned long long)c.memStateLines,
                        (unsigned long long)b.memStateHash,
                        (unsigned long long)b.memStateLines);
                }
                tally.fold(f.faults);
                phase_injected.spuriousSquashes +=
                    f.faults.spuriousSquashes;
                phase_injected.commitSquashes +=
                    f.faults.commitSquashes;
            }
        }
        char injected[96];
        std::snprintf(injected, sizeof(injected), "sq %llu+%llu",
                      (unsigned long long)phase_injected.spuriousSquashes,
                      (unsigned long long)phase_injected.commitSquashes);
        table.addRow({"vp", "NUMA-16", spec.canonical(),
                      std::to_string(phase_points), injected,
                      phase_state_ok ? "match" : "DIVERGED"});
    }

    std::fputs(table.render().c_str(), stdout);

    // The soak must actually have exercised every fault site: a soak
    // where (say) no NoC stall ever fired proves nothing about stalls.
    // The predict+validate phase likewise proves nothing if the
    // predictor never fired.
    bool coverage_ok = tally.injected.nocDelays > 0 &&
                       tally.injected.nocStalls > 0 &&
                       tally.injected.forcedSpills > 0 &&
                       tally.injected.overflowPressure > 0 &&
                       tally.injected.undoStressEvents > 0 &&
                       tally.injected.spuriousSquashes > 0 &&
                       tally.injected.commitSquashes > 0 &&
                       vp_predictions > 0;

    std::size_t audit_issues = 0;
    if (tracing) {
        trace::stop();
        trace::TraceFile ooo_file = trace::drainFile();
        trace::reset();
        auto audit_one = [&](const char *label,
                             const trace::TraceFile &file,
                             const std::string &path) {
            trace::AuditReport report = trace::audit(file);
            audit_issues += report.issues.size();
            std::printf("\nTrace audit (%s): %zu records, %zu "
                        "streams, %zu checks, %zu issues\n",
                        label, report.records, report.streams,
                        report.checks, report.issues.size());
            if (!report.ok())
                std::fputs(report.summary().c_str(), stderr);
            if (!path.empty()) {
                std::string err;
                if (trace::writeBinary(path, file, &err))
                    std::fprintf(stderr, "soak: trace -> %s\n",
                                 path.c_str());
                else
                    std::fprintf(stderr, "soak: %s\n", err.c_str());
            }
        };
        audit_one("in-order phases", inorder_file, trace_path);
        audit_one("ooo phase", ooo_file,
                  trace_path.empty() ? std::string()
                                     : trace_path + ".ooo");
    }

    std::printf("\nSoak summary: %u points, %u completion failures, "
                "%u state mismatches, %llu injected faults, "
                "%llu value predictions%s\n",
                tally.points, tally.completionFailures,
                tally.stateMismatches,
                (unsigned long long)tally.injected.total(),
                (unsigned long long)vp_predictions,
                coverage_ok ? "" : " (COVERAGE GAP: some fault site "
                                   "or the value predictor never "
                                   "fired)");

    bool ok = tally.completionFailures == 0 &&
              tally.stateMismatches == 0 && coverage_ok &&
              audit_issues == 0;
    std::printf("SOAK %s\n", ok ? "PASS" : "FAIL");
    return ok ? 0 : 1;
}
