/**
 * @file
 * Shared setup for the illustrative figure benchmarks (Figures 5/6):
 * small scripted scenarios on few-processor machines.
 */

#ifndef TLSIM_BENCH_SCRIPTED_FIGURE_WORKLOADS_HPP
#define TLSIM_BENCH_SCRIPTED_FIGURE_WORKLOADS_HPP

#include "common/fault.hpp"
#include "tls/engine.hpp"
#include "tls/scripted_workload.hpp"

namespace tlsim::bench {

/** Variable X of Figure 5 (in the mostly-private region). */
inline constexpr Addr kVarX = 0x1000'0000;

/**
 * Figure 5's scenario: two processors, four tasks. T0 is long; T1 and
 * T2 both create their own version of X.
 */
inline tls::RunResult
runFigure5(tls::Separation sep, const fault::FaultSpec &faults = {},
           mem::CoreModelKind core = mem::CoreModelKind::InOrder)
{
    using cpu::Op;
    std::vector<std::vector<Op>> tasks;
    // T0: long, runs on processor 0.
    tasks.push_back({Op::compute(60'000), Op::store(0x4000'0000)});
    // T1: short, writes X.
    tasks.push_back({Op::compute(2'000), Op::store(kVarX),
                     Op::compute(8'000)});
    // T2: short, writes X early (the MultiT&SV stall point).
    tasks.push_back({Op::compute(2'000), Op::store(kVarX),
                     Op::compute(8'000)});
    // T3: short.
    tasks.push_back({Op::compute(10'000), Op::store(0x4100'0000)});

    tls::ScriptedWorkload wl(std::move(tasks));
    tls::EngineConfig cfg;
    cfg.scheme = tls::SchemeConfig::make(sep, tls::Merging::EagerAMM);
    cfg.machine = mem::MachineParams::numa16();
    cfg.machine.numProcs = 2;
    cfg.machine.coreModel = core;
    cfg.faults = faults;
    tls::SpeculationEngine engine(cfg, wl);
    return engine.run();
}

/**
 * Figure 6's scenario: a batch of equal tasks with a sizeable written
 * footprint on a few processors, so the commit wavefront is visible.
 */
inline tls::RunResult
runFigure6(tls::Separation sep, tls::Merging merge, unsigned procs = 3,
           unsigned n_tasks = 6, const fault::FaultSpec &faults = {},
           mem::CoreModelKind core = mem::CoreModelKind::InOrder)
{
    using cpu::Op;
    std::vector<std::vector<Op>> tasks;
    for (unsigned t = 0; t < n_tasks; ++t) {
        std::vector<Op> ops;
        ops.push_back(Op::compute(6'000));
        for (unsigned w = 0; w < 160; ++w)
            ops.push_back(Op::store(0x4000'0000 +
                                    (Addr(t) << 20) + Addr(w) * 8));
        ops.push_back(Op::compute(6'000));
        tasks.push_back(std::move(ops));
    }
    tls::ScriptedWorkload wl(std::move(tasks));
    tls::EngineConfig cfg;
    cfg.scheme = tls::SchemeConfig::make(sep, merge);
    cfg.machine = mem::MachineParams::numa16();
    cfg.machine.numProcs = procs;
    cfg.machine.coreModel = core;
    cfg.faults = faults;
    tls::SpeculationEngine engine(cfg, wl);
    return engine.run();
}

} // namespace tlsim::bench

#endif // TLSIM_BENCH_SCRIPTED_FIGURE_WORKLOADS_HPP
