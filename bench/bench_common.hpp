/**
 * @file
 * Shared helpers for the figure/table bench drivers.
 */

#ifndef TLSIM_BENCH_BENCH_COMMON_HPP
#define TLSIM_BENCH_BENCH_COMMON_HPP

#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "common/task_pool.hpp"

namespace tlsim::bench {

/**
 * Parse a `--threads N` / `--threads=N` flag for sweep drivers.
 *
 * Returns 0 ("auto": TLSIM_THREADS env, else hardware concurrency)
 * when the flag is absent. The thread count only affects wall-clock
 * time — every figure table is byte-identical at any value.
 */
inline unsigned
parseThreads(int argc, char **argv)
{
    for (int i = 1; i < argc; ++i) {
        const char *arg = argv[i];
        const char *value = nullptr;
        if (std::strcmp(arg, "--threads") == 0) {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "--threads wants a count\n");
                std::exit(1);
            }
            value = argv[i + 1];
        } else if (std::strncmp(arg, "--threads=", 10) == 0) {
            value = arg + 10;
        }
        if (value) {
            long v = std::atol(value);
            if (v < 1) {
                std::fprintf(stderr, "--threads wants a count >= 1, "
                                     "got '%s'\n",
                             value);
                std::exit(1);
            }
            return unsigned(v);
        }
    }
    return 0;
}

} // namespace tlsim::bench

#endif // TLSIM_BENCH_BENCH_COMMON_HPP
