/**
 * @file
 * Shared helpers for the figure/table bench drivers.
 */

#ifndef TLSIM_BENCH_BENCH_COMMON_HPP
#define TLSIM_BENCH_BENCH_COMMON_HPP

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>

#include "common/fault.hpp"
#include "common/task_pool.hpp"
#include "common/trace.hpp"
#include "mem/machine_params.hpp"
#include "sim/result_cache.hpp"

namespace tlsim::bench {

/**
 * Parse a `--threads N` / `--threads=N` flag for sweep drivers.
 *
 * Returns 0 ("auto": TLSIM_THREADS env, else hardware concurrency)
 * when the flag is absent. The thread count only affects wall-clock
 * time — every figure table is byte-identical at any value.
 */
inline unsigned
parseThreads(int argc, char **argv)
{
    for (int i = 1; i < argc; ++i) {
        const char *arg = argv[i];
        const char *value = nullptr;
        if (std::strcmp(arg, "--threads") == 0) {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "--threads wants a count\n");
                std::exit(1);
            }
            value = argv[i + 1];
        } else if (std::strncmp(arg, "--threads=", 10) == 0) {
            value = arg + 10;
        }
        if (value) {
            long v = std::atol(value);
            if (v < 1) {
                std::fprintf(stderr, "--threads wants a count >= 1, "
                                     "got '%s'\n",
                             value);
                std::exit(1);
            }
            return unsigned(v);
        }
    }
    return 0;
}

/**
 * Parse a `--partitions N` / `--partitions=N` flag for the simulation
 * drivers: per-point partitioned-PDES queue count.
 *
 * Precedence (the documented contract, task_pool.hpp): an explicit
 * flag beats the TLSIM_PARTITIONS environment variable, which beats
 * the default of 1. Returning 0 here means "no flag" — the resolution
 * happens downstream (resolvePartitionCount), so env-only invocations
 * work for every driver. The scheduler's ordered mode guarantees the
 * figure tables, traces and memStateHash are byte-identical at any
 * value; the sweep's thread fan-out is clamped so that
 * threads x partitions never exceeds the thread budget.
 */
inline unsigned
parsePartitions(int argc, char **argv)
{
    for (int i = 1; i < argc; ++i) {
        const char *arg = argv[i];
        const char *value = nullptr;
        if (std::strcmp(arg, "--partitions") == 0) {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "--partitions wants a count\n");
                std::exit(1);
            }
            value = argv[i + 1];
        } else if (std::strncmp(arg, "--partitions=", 13) == 0) {
            value = arg + 13;
        }
        if (value) {
            long v = std::atol(value);
            if (v < 1) {
                std::fprintf(stderr, "--partitions wants a count >= 1, "
                                     "got '%s'\n",
                             value);
                std::exit(1);
            }
            return unsigned(v);
        }
    }
    return 0;
}

/**
 * Parse a `--core MODEL` / `--core=MODEL` flag for the simulation
 * drivers: which processor timing model drives the cores
 * (docs/OOO_CORE.md). `inorder` — the default — is byte-identical to
 * the pre-flag drivers; `ooo` enables the bounded-window out-of-order
 * model with relaxed-order speculative loads. Exits with an error on
 * an unknown name.
 */
inline mem::CoreModelKind
parseCoreModel(int argc, char **argv)
{
    const char *value = nullptr;
    for (int i = 1; i < argc; ++i) {
        const char *arg = argv[i];
        if (std::strcmp(arg, "--core") == 0 && i + 1 < argc)
            value = argv[++i];
        else if (std::strncmp(arg, "--core=", 7) == 0)
            value = arg + 7;
    }
    mem::CoreModelKind kind = mem::CoreModelKind::InOrder;
    if (value != nullptr && !mem::parseCoreModelName(value, &kind)) {
        std::fprintf(stderr,
                     "--core wants 'inorder' or 'ooo', got '%s'\n",
                     value);
        std::exit(1);
    }
    return kind;
}

/**
 * Parse a `--faults SPEC` / `--faults=SPEC` flag for the simulation
 * drivers (grammar: see fault::FaultSpec). Returns an inert spec when
 * the flag is absent; exits with the parse error when it is malformed.
 * Faulted figure tables are for robustness experiments — they are
 * still deterministic per spec, but they are *not* the paper's
 * numbers, so drivers print the canonical spec to stderr as a banner.
 */
inline fault::FaultSpec
parseFaults(int argc, char **argv)
{
    const char *spec = nullptr;
    for (int i = 1; i < argc; ++i) {
        const char *arg = argv[i];
        if (std::strcmp(arg, "--faults") == 0 && i + 1 < argc)
            spec = argv[++i];
        else if (std::strncmp(arg, "--faults=", 9) == 0)
            spec = arg + 9;
    }
    fault::FaultSpec faults;
    if (spec != nullptr) {
        std::string err;
        if (!fault::FaultSpec::parse(spec, &faults, &err)) {
            std::fprintf(stderr, "--faults: %s\n", err.c_str());
            std::exit(1);
        }
        if (faults.anyEnabled())
            std::fprintf(stderr, "faults: %s\n",
                         faults.canonical().c_str());
    }
    return faults;
}

/**
 * RAII task-lifetime trace session for a figure driver
 * (docs/TRACING.md). Flags / environment:
 *
 *   --trace=FILE / --trace FILE   write the binary trace to FILE
 *   TLSIM_TRACE=FILE              same, via the environment
 *   --trace-json=FILE             also write Perfetto trace_event JSON
 *   --trace-mask=SPEC             categories to record (task, version,
 *                                 undo, noc, core, audit, all)
 *
 * Recording starts in the constructor when any sink was requested and
 * the sinks are written in the destructor, after the driver's sweeps
 * finished. All session chatter goes to stderr so the figure tables
 * on stdout stay byte-identical with and without tracing.
 */
class TraceSession
{
  public:
    TraceSession(int argc, char **argv, std::uint32_t default_mask,
                 std::size_t ring_capacity)
    {
        const char *bin = std::getenv("TLSIM_TRACE");
        const char *mask_spec = nullptr;
        for (int i = 1; i < argc; ++i) {
            const char *arg = argv[i];
            if (std::strcmp(arg, "--trace") == 0 && i + 1 < argc)
                bin = argv[++i];
            else if (std::strncmp(arg, "--trace=", 8) == 0)
                bin = arg + 8;
            else if (std::strncmp(arg, "--trace-json=", 13) == 0)
                jsonPath_ = arg + 13;
            else if (std::strncmp(arg, "--trace-mask=", 13) == 0)
                mask_spec = arg + 13;
        }
        if (bin != nullptr && *bin != '\0')
            binPath_ = bin;
        if (binPath_.empty() && jsonPath_.empty())
            return;
        if (!trace::builtIn()) {
            std::fprintf(stderr,
                         "trace: requested but this build has "
                         "TLSIM_TRACE=OFF; ignoring\n");
            return;
        }
        trace::Options opts;
        opts.mask = mask_spec != nullptr
                        ? trace::parseMask(mask_spec, default_mask)
                        : default_mask;
        opts.ringCapacity = ring_capacity;
        trace::start(opts);
        active_ = true;
    }

    ~TraceSession()
    {
        if (!active_)
            return;
        trace::stop();
        trace::TraceFile file = trace::drainFile();
        std::string err;
        if (!binPath_.empty()) {
            if (trace::writeBinary(binPath_, file, &err))
                std::fprintf(stderr,
                             "trace: %zu records (%llu dropped) -> "
                             "%s\n",
                             file.records.size(),
                             (unsigned long long)file.dropped,
                             binPath_.c_str());
            else
                std::fprintf(stderr, "trace: %s\n", err.c_str());
        }
        if (!jsonPath_.empty()) {
            if (trace::writeJson(jsonPath_, file, &err))
                std::fprintf(stderr, "trace: Perfetto JSON -> %s\n",
                             jsonPath_.c_str());
            else
                std::fprintf(stderr, "trace: %s\n", err.c_str());
        }
        trace::reset();
    }

    TraceSession(const TraceSession &) = delete;
    TraceSession &operator=(const TraceSession &) = delete;

    bool active() const { return active_; }

  private:
    std::string binPath_;
    std::string jsonPath_;
    bool active_ = false;
};

/**
 * RAII result-cache session for a figure driver (DESIGN.md §10).
 * Flags / environment:
 *
 *   --cache-dir=DIR / --cache-dir DIR   content-addressed store at DIR
 *   --cache                             same, at the default
 *                                       .tlsim-cache (gitignored)
 *   TLSIM_CACHE=DIR                     same, via the environment
 *   --cache-verify=P                    recompute fraction P of hits
 *                                       and hard-fail on any byte
 *                                       difference vs the store
 *   --cache-stats=FILE                  append the session's hit/miss
 *                                       stats as one JSON line
 *
 * The constructor installs the store as the process-wide memo layer
 * consulted by runScheme / runSynthScheme / runSequential /
 * runSynthSequential; the destructor prints the session's stats to
 * stderr (stdout stays byte-identical with and without caching —
 * that's the acceptance criterion) and uninstalls it.
 */
class CacheSession
{
  public:
    CacheSession(int argc, char **argv)
    {
        const char *dir = std::getenv("TLSIM_CACHE");
        const char *verify = nullptr;
        for (int i = 1; i < argc; ++i) {
            const char *arg = argv[i];
            if (std::strcmp(arg, "--cache") == 0)
                dir = ".tlsim-cache";
            else if (std::strcmp(arg, "--cache-dir") == 0 &&
                     i + 1 < argc)
                dir = argv[++i];
            else if (std::strncmp(arg, "--cache-dir=", 12) == 0)
                dir = arg + 12;
            else if (std::strncmp(arg, "--cache-verify=", 15) == 0)
                verify = arg + 15;
            else if (std::strncmp(arg, "--cache-stats=", 14) == 0)
                statsPath_ = arg + 14;
        }
        if (dir == nullptr || *dir == '\0')
            return;
        cache_ = std::make_unique<sim::ResultCache>(dir);
        if (verify != nullptr)
            cache_->setVerifyFraction(std::atof(verify));
        sim::setResultCache(cache_.get());
        std::fprintf(stderr, "cache: %s (code-version %s)%s\n", dir,
                     sim::codeVersion(),
                     verify != nullptr ? ", verifying hits" : "");
    }

    ~CacheSession()
    {
        if (cache_ == nullptr)
            return;
        sim::setResultCache(nullptr);
        const sim::CacheStats s = cache_->stats();
        const std::string json = sim::ResultCache::statsJson(s);
        std::fprintf(stderr, "cache: %s\n", json.c_str());
        if (!statsPath_.empty()) {
            std::FILE *f = std::fopen(statsPath_.c_str(), "a");
            if (f != nullptr) {
                std::fprintf(f, "%s\n", json.c_str());
                std::fclose(f);
            } else {
                std::fprintf(stderr, "cache: cannot write %s\n",
                             statsPath_.c_str());
            }
        }
    }

    CacheSession(const CacheSession &) = delete;
    CacheSession &operator=(const CacheSession &) = delete;

    bool active() const { return cache_ != nullptr; }

  private:
    std::unique_ptr<sim::ResultCache> cache_;
    std::string statsPath_;
};

} // namespace tlsim::bench

#endif // TLSIM_BENCH_BENCH_COMMON_HPP
