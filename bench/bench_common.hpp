/**
 * @file
 * Shared helpers for the figure/table bench drivers.
 */

#ifndef TLSIM_BENCH_BENCH_COMMON_HPP
#define TLSIM_BENCH_BENCH_COMMON_HPP

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "common/fault.hpp"
#include "common/task_pool.hpp"
#include "common/trace.hpp"

namespace tlsim::bench {

/**
 * Parse a `--threads N` / `--threads=N` flag for sweep drivers.
 *
 * Returns 0 ("auto": TLSIM_THREADS env, else hardware concurrency)
 * when the flag is absent. The thread count only affects wall-clock
 * time — every figure table is byte-identical at any value.
 */
inline unsigned
parseThreads(int argc, char **argv)
{
    for (int i = 1; i < argc; ++i) {
        const char *arg = argv[i];
        const char *value = nullptr;
        if (std::strcmp(arg, "--threads") == 0) {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "--threads wants a count\n");
                std::exit(1);
            }
            value = argv[i + 1];
        } else if (std::strncmp(arg, "--threads=", 10) == 0) {
            value = arg + 10;
        }
        if (value) {
            long v = std::atol(value);
            if (v < 1) {
                std::fprintf(stderr, "--threads wants a count >= 1, "
                                     "got '%s'\n",
                             value);
                std::exit(1);
            }
            return unsigned(v);
        }
    }
    return 0;
}

/**
 * Parse a `--partitions N` / `--partitions=N` flag for the simulation
 * drivers: per-point partitioned-PDES queue count.
 *
 * Precedence (the documented contract, task_pool.hpp): an explicit
 * flag beats the TLSIM_PARTITIONS environment variable, which beats
 * the default of 1. Returning 0 here means "no flag" — the resolution
 * happens downstream (resolvePartitionCount), so env-only invocations
 * work for every driver. The scheduler's ordered mode guarantees the
 * figure tables, traces and memStateHash are byte-identical at any
 * value; the sweep's thread fan-out is clamped so that
 * threads x partitions never exceeds the thread budget.
 */
inline unsigned
parsePartitions(int argc, char **argv)
{
    for (int i = 1; i < argc; ++i) {
        const char *arg = argv[i];
        const char *value = nullptr;
        if (std::strcmp(arg, "--partitions") == 0) {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "--partitions wants a count\n");
                std::exit(1);
            }
            value = argv[i + 1];
        } else if (std::strncmp(arg, "--partitions=", 13) == 0) {
            value = arg + 13;
        }
        if (value) {
            long v = std::atol(value);
            if (v < 1) {
                std::fprintf(stderr, "--partitions wants a count >= 1, "
                                     "got '%s'\n",
                             value);
                std::exit(1);
            }
            return unsigned(v);
        }
    }
    return 0;
}

/**
 * Parse a `--faults SPEC` / `--faults=SPEC` flag for the simulation
 * drivers (grammar: see fault::FaultSpec). Returns an inert spec when
 * the flag is absent; exits with the parse error when it is malformed.
 * Faulted figure tables are for robustness experiments — they are
 * still deterministic per spec, but they are *not* the paper's
 * numbers, so drivers print the canonical spec to stderr as a banner.
 */
inline fault::FaultSpec
parseFaults(int argc, char **argv)
{
    const char *spec = nullptr;
    for (int i = 1; i < argc; ++i) {
        const char *arg = argv[i];
        if (std::strcmp(arg, "--faults") == 0 && i + 1 < argc)
            spec = argv[++i];
        else if (std::strncmp(arg, "--faults=", 9) == 0)
            spec = arg + 9;
    }
    fault::FaultSpec faults;
    if (spec != nullptr) {
        std::string err;
        if (!fault::FaultSpec::parse(spec, &faults, &err)) {
            std::fprintf(stderr, "--faults: %s\n", err.c_str());
            std::exit(1);
        }
        if (faults.anyEnabled())
            std::fprintf(stderr, "faults: %s\n",
                         faults.canonical().c_str());
    }
    return faults;
}

/**
 * RAII task-lifetime trace session for a figure driver
 * (docs/TRACING.md). Flags / environment:
 *
 *   --trace=FILE / --trace FILE   write the binary trace to FILE
 *   TLSIM_TRACE=FILE              same, via the environment
 *   --trace-json=FILE             also write Perfetto trace_event JSON
 *   --trace-mask=SPEC             categories to record (task, version,
 *                                 undo, noc, audit, all)
 *
 * Recording starts in the constructor when any sink was requested and
 * the sinks are written in the destructor, after the driver's sweeps
 * finished. All session chatter goes to stderr so the figure tables
 * on stdout stay byte-identical with and without tracing.
 */
class TraceSession
{
  public:
    TraceSession(int argc, char **argv, std::uint32_t default_mask,
                 std::size_t ring_capacity)
    {
        const char *bin = std::getenv("TLSIM_TRACE");
        const char *mask_spec = nullptr;
        for (int i = 1; i < argc; ++i) {
            const char *arg = argv[i];
            if (std::strcmp(arg, "--trace") == 0 && i + 1 < argc)
                bin = argv[++i];
            else if (std::strncmp(arg, "--trace=", 8) == 0)
                bin = arg + 8;
            else if (std::strncmp(arg, "--trace-json=", 13) == 0)
                jsonPath_ = arg + 13;
            else if (std::strncmp(arg, "--trace-mask=", 13) == 0)
                mask_spec = arg + 13;
        }
        if (bin != nullptr && *bin != '\0')
            binPath_ = bin;
        if (binPath_.empty() && jsonPath_.empty())
            return;
        if (!trace::builtIn()) {
            std::fprintf(stderr,
                         "trace: requested but this build has "
                         "TLSIM_TRACE=OFF; ignoring\n");
            return;
        }
        trace::Options opts;
        opts.mask = mask_spec != nullptr
                        ? trace::parseMask(mask_spec, default_mask)
                        : default_mask;
        opts.ringCapacity = ring_capacity;
        trace::start(opts);
        active_ = true;
    }

    ~TraceSession()
    {
        if (!active_)
            return;
        trace::stop();
        trace::TraceFile file = trace::drainFile();
        std::string err;
        if (!binPath_.empty()) {
            if (trace::writeBinary(binPath_, file, &err))
                std::fprintf(stderr,
                             "trace: %zu records (%llu dropped) -> "
                             "%s\n",
                             file.records.size(),
                             (unsigned long long)file.dropped,
                             binPath_.c_str());
            else
                std::fprintf(stderr, "trace: %s\n", err.c_str());
        }
        if (!jsonPath_.empty()) {
            if (trace::writeJson(jsonPath_, file, &err))
                std::fprintf(stderr, "trace: Perfetto JSON -> %s\n",
                             jsonPath_.c_str());
            else
                std::fprintf(stderr, "trace: %s\n", err.c_str());
        }
        trace::reset();
    }

    TraceSession(const TraceSession &) = delete;
    TraceSession &operator=(const TraceSession &) = delete;

    bool active() const { return active_; }

  private:
    std::string binPath_;
    std::string jsonPath_;
    bool active_ = false;
};

} // namespace tlsim::bench

#endif // TLSIM_BENCH_BENCH_COMMON_HPP
